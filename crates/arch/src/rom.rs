//! Instruction-ROM encoding (§3.5: "the algorithms are broken into a
//! sequence of instructions which will be downloaded to the instruction ROM
//! from HBM").
//!
//! Each instruction encodes into two 64-bit words: an opcode/operand word
//! and an immediate word (used only by `SetScalar`). The encoding
//! round-trips exactly, and [`rom_size_bytes`] reports the footprint a
//! program occupies in HBM.

use crate::{ArchError, Instr, MatrixId, Program, ProgramBuilder, SReg, ScalarOp, VecId};

/// Bytes one encoded instruction occupies.
pub const INSTR_BYTES: usize = 16;

const OP_LOOP_START: u8 = 0;
const OP_LOOP_END: u8 = 1;
const OP_SCALAR: u8 = 2;
const OP_SET_SCALAR: u8 = 3;
const OP_LOAD: u8 = 4;
const OP_STORE: u8 = 5;
const OP_LINCOMB: u8 = 6;
const OP_EW_MUL: u8 = 7;
const OP_EW_MAX: u8 = 8;
const OP_EW_MIN: u8 = 9;
const OP_DOT: u8 = 10;
const OP_DUP: u8 = 11;
const OP_SPMV: u8 = 12;

fn pack(op: u8, fields: [u16; 4]) -> u64 {
    let mut w = (op as u64) << 56;
    for (i, f) in fields.iter().enumerate() {
        w |= (*f as u64) << (i * 14);
    }
    w
}

fn unpack(w: u64) -> (u8, [u16; 4]) {
    let op = (w >> 56) as u8;
    let mut fields = [0u16; 4];
    for (i, f) in fields.iter_mut().enumerate() {
        *f = ((w >> (i * 14)) & 0x3FFF) as u16;
    }
    (op, fields)
}

fn scalar_op_code(op: ScalarOp) -> u16 {
    match op {
        ScalarOp::Add => 0,
        ScalarOp::Sub => 1,
        ScalarOp::Mul => 2,
        ScalarOp::Div => 3,
        ScalarOp::Max => 4,
    }
}

fn scalar_op_from(code: u16) -> Result<ScalarOp, ArchError> {
    Ok(match code {
        0 => ScalarOp::Add,
        1 => ScalarOp::Sub,
        2 => ScalarOp::Mul,
        3 => ScalarOp::Div,
        4 => ScalarOp::Max,
        other => return Err(ArchError::BadRegister(format!("scalar opcode {other}"))),
    })
}

/// Encodes one instruction into its two ROM words.
pub fn encode_instr(i: &Instr) -> [u64; 2] {
    let (word, imm) = match *i {
        Instr::LoopStart => (pack(OP_LOOP_START, [0; 4]), 0.0),
        Instr::LoopEndIfLess { a, b } => {
            (pack(OP_LOOP_END, [a.index() as u16, b.index() as u16, 0, 0]), 0.0)
        }
        Instr::Scalar { op, dst, a, b } => (
            pack(
                OP_SCALAR,
                [dst.index() as u16, a.index() as u16, b.index() as u16, scalar_op_code(op)],
            ),
            0.0,
        ),
        Instr::SetScalar { dst, value } => {
            (pack(OP_SET_SCALAR, [dst.index() as u16, 0, 0, 0]), value)
        }
        Instr::LoadHbm { vec } => (pack(OP_LOAD, [vec.index() as u16, 0, 0, 0]), 0.0),
        Instr::StoreHbm { vec } => (pack(OP_STORE, [vec.index() as u16, 0, 0, 0]), 0.0),
        Instr::Lincomb { dst, alpha, a, beta, b } => (
            pack(
                OP_LINCOMB,
                [dst.index() as u16, a.index() as u16, b.index() as u16, combine(alpha, beta)],
            ),
            0.0,
        ),
        Instr::EwMul { dst, a, b } => {
            (pack(OP_EW_MUL, [dst.index() as u16, a.index() as u16, b.index() as u16, 0]), 0.0)
        }
        Instr::EwMax { dst, a, b } => {
            (pack(OP_EW_MAX, [dst.index() as u16, a.index() as u16, b.index() as u16, 0]), 0.0)
        }
        Instr::EwMin { dst, a, b } => {
            (pack(OP_EW_MIN, [dst.index() as u16, a.index() as u16, b.index() as u16, 0]), 0.0)
        }
        Instr::Dot { dst, a, b } => {
            (pack(OP_DOT, [dst.index() as u16, a.index() as u16, b.index() as u16, 0]), 0.0)
        }
        Instr::Duplicate { vec, matrix } => {
            (pack(OP_DUP, [vec.index() as u16, matrix.index() as u16, 0, 0]), 0.0)
        }
        Instr::Spmv { matrix, input, output } => (
            pack(OP_SPMV, [matrix.index() as u16, input.index() as u16, output.index() as u16, 0]),
            0.0,
        ),
    };
    [word, imm.to_bits()]
}

/// Packs two 7-bit scalar-register indices into one field.
fn combine(a: SReg, b: SReg) -> u16 {
    assert!(a.index() < 128 && b.index() < 128, "scalar register file exceeds 128");
    ((a.index() as u16) << 7) | b.index() as u16
}

fn split(field: u16) -> (SReg, SReg) {
    (SReg((field >> 7) as usize), SReg((field & 0x7F) as usize))
}

/// Decodes one instruction from its two ROM words.
///
/// # Errors
///
/// Returns [`ArchError::BadRegister`] for unknown opcodes.
pub fn decode_instr(words: [u64; 2]) -> Result<Instr, ArchError> {
    let (op, f) = unpack(words[0]);
    let imm = f64::from_bits(words[1]);
    Ok(match op {
        OP_LOOP_START => Instr::LoopStart,
        OP_LOOP_END => Instr::LoopEndIfLess { a: SReg(f[0] as usize), b: SReg(f[1] as usize) },
        OP_SCALAR => Instr::Scalar {
            op: scalar_op_from(f[3])?,
            dst: SReg(f[0] as usize),
            a: SReg(f[1] as usize),
            b: SReg(f[2] as usize),
        },
        OP_SET_SCALAR => Instr::SetScalar { dst: SReg(f[0] as usize), value: imm },
        OP_LOAD => Instr::LoadHbm { vec: VecId(f[0] as usize) },
        OP_STORE => Instr::StoreHbm { vec: VecId(f[0] as usize) },
        OP_LINCOMB => {
            let (alpha, beta) = split(f[3]);
            Instr::Lincomb {
                dst: VecId(f[0] as usize),
                alpha,
                a: VecId(f[1] as usize),
                beta,
                b: VecId(f[2] as usize),
            }
        }
        OP_EW_MUL => Instr::EwMul {
            dst: VecId(f[0] as usize),
            a: VecId(f[1] as usize),
            b: VecId(f[2] as usize),
        },
        OP_EW_MAX => Instr::EwMax {
            dst: VecId(f[0] as usize),
            a: VecId(f[1] as usize),
            b: VecId(f[2] as usize),
        },
        OP_EW_MIN => Instr::EwMin {
            dst: VecId(f[0] as usize),
            a: VecId(f[1] as usize),
            b: VecId(f[2] as usize),
        },
        OP_DOT => Instr::Dot {
            dst: SReg(f[0] as usize),
            a: VecId(f[1] as usize),
            b: VecId(f[2] as usize),
        },
        OP_DUP => Instr::Duplicate { vec: VecId(f[0] as usize), matrix: MatrixId(f[1] as usize) },
        OP_SPMV => Instr::Spmv {
            matrix: MatrixId(f[0] as usize),
            input: VecId(f[1] as usize),
            output: VecId(f[2] as usize),
        },
        other => return Err(ArchError::BadRegister(format!("opcode {other}"))),
    })
}

/// Encodes a whole program into its ROM image.
pub fn encode_program(program: &Program) -> Vec<u64> {
    program.instrs().iter().flat_map(encode_instr).collect()
}

/// Decodes a ROM image back into a program with the given loop trip cap.
///
/// # Errors
///
/// Returns [`ArchError`] for malformed images (odd word counts, unknown
/// opcodes, unbalanced loops).
pub fn decode_program(rom: &[u64], max_trips: usize) -> Result<Program, ArchError> {
    if !rom.len().is_multiple_of(2) {
        return Err(ArchError::MalformedLoop("ROM image has odd word count".into()));
    }
    let mut pb = ProgramBuilder::new();
    pb.max_trips(max_trips);
    for chunk in rom.chunks_exact(2) {
        match decode_instr([chunk[0], chunk[1]])? {
            Instr::LoopStart => {
                pb.loop_start();
            }
            Instr::LoopEndIfLess { a, b } => {
                pb.loop_end_if_less(a, b);
            }
            other => {
                pb.push(other);
            }
        }
    }
    pb.build()
}

/// ROM footprint of a program in bytes (the HBM download size of §3.5).
pub fn rom_size_bytes(program: &Program) -> usize {
    program.len() * INSTR_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::SetScalar { dst: SReg(3), value: -1.25 });
        pb.push(Instr::Lincomb {
            dst: VecId(0),
            alpha: SReg(1),
            a: VecId(2),
            beta: SReg(3),
            b: VecId(0),
        });
        pb.loop_start();
        pb.push(Instr::Duplicate { vec: VecId(0), matrix: MatrixId(1) });
        pb.push(Instr::Spmv { matrix: MatrixId(1), input: VecId(0), output: VecId(4) });
        pb.push(Instr::Dot { dst: SReg(0), a: VecId(4), b: VecId(4) });
        pb.push(Instr::Scalar { op: ScalarOp::Div, dst: SReg(2), a: SReg(0), b: SReg(1) });
        pb.loop_end_if_less(SReg(2), SReg(3));
        pb.push(Instr::StoreHbm { vec: VecId(4) });
        pb.max_trips(77);
        pb.build().expect("balanced")
    }

    #[test]
    fn every_instruction_roundtrips() {
        let all = [
            Instr::LoopStart,
            Instr::LoopEndIfLess { a: SReg(5), b: SReg(9) },
            Instr::Scalar { op: ScalarOp::Max, dst: SReg(1), a: SReg(2), b: SReg(3) },
            Instr::SetScalar { dst: SReg(0), value: std::f64::consts::PI },
            Instr::LoadHbm { vec: VecId(11) },
            Instr::StoreHbm { vec: VecId(12) },
            Instr::Lincomb {
                dst: VecId(1),
                alpha: SReg(4),
                a: VecId(2),
                beta: SReg(5),
                b: VecId(3),
            },
            Instr::EwMul { dst: VecId(1), a: VecId(2), b: VecId(3) },
            Instr::EwMax { dst: VecId(1), a: VecId(2), b: VecId(3) },
            Instr::EwMin { dst: VecId(1), a: VecId(2), b: VecId(3) },
            Instr::Dot { dst: SReg(7), a: VecId(8), b: VecId(9) },
            Instr::Duplicate { vec: VecId(3), matrix: MatrixId(2) },
            Instr::Spmv { matrix: MatrixId(0), input: VecId(1), output: VecId(2) },
        ];
        for i in &all {
            let decoded = decode_instr(encode_instr(i)).expect("decodes");
            assert_eq!(&decoded, i);
        }
    }

    #[test]
    fn program_roundtrips_with_loop() {
        let p = sample_program();
        let rom = encode_program(&p);
        assert_eq!(rom.len(), p.len() * 2);
        let back = decode_program(&rom, p.max_trips()).expect("decodes");
        assert_eq!(back.instrs(), p.instrs());
        assert_eq!(back.loop_bounds(), p.loop_bounds());
    }

    #[test]
    fn rom_size_matches_instruction_count() {
        let p = sample_program();
        assert_eq!(rom_size_bytes(&p), p.len() * INSTR_BYTES);
    }

    #[test]
    fn bad_images_are_rejected() {
        assert!(decode_program(&[1], 10).is_err());
        let bogus = pack(99, [0; 4]);
        assert!(decode_instr([bogus, 0]).is_err());
    }

    #[test]
    fn negative_and_special_immediates_roundtrip() {
        for v in [-0.0, f64::INFINITY, 1e-300, -123.456] {
            let i = Instr::SetScalar { dst: SReg(0), value: v };
            let back = decode_instr(encode_instr(&i)).expect("decodes");
            if let Instr::SetScalar { value, .. } = back {
                assert_eq!(value.to_bits(), v.to_bits());
            } else {
                panic!("wrong variant");
            }
        }
    }
}

/// Renders a program as a human-readable listing (the `program.lst` of the
/// hardware bundle): one line per instruction with its ROM words.
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (pc, i) in program.instrs().iter().enumerate() {
        let words = encode_instr(i);
        let text = match *i {
            Instr::LoopStart => "loop_start".to_string(),
            Instr::LoopEndIfLess { a, b } => {
                format!("loop_end_if s{} < s{}", a.index(), b.index())
            }
            Instr::Scalar { op, dst, a, b } => {
                let sym = match op {
                    ScalarOp::Add => "+",
                    ScalarOp::Sub => "-",
                    ScalarOp::Mul => "*",
                    ScalarOp::Div => "/",
                    ScalarOp::Max => "max",
                };
                format!("s{} = s{} {} s{}", dst.index(), a.index(), sym, b.index())
            }
            Instr::SetScalar { dst, value } => format!("s{} = {value:?}", dst.index()),
            Instr::LoadHbm { vec } => format!("load v{} <- hbm", vec.index()),
            Instr::StoreHbm { vec } => format!("store v{} -> hbm", vec.index()),
            Instr::Lincomb { dst, alpha, a, beta, b } => format!(
                "v{} = s{}*v{} + s{}*v{}",
                dst.index(),
                alpha.index(),
                a.index(),
                beta.index(),
                b.index()
            ),
            Instr::EwMul { dst, a, b } => {
                format!("v{} = v{} .* v{}", dst.index(), a.index(), b.index())
            }
            Instr::EwMax { dst, a, b } => {
                format!("v{} = max(v{}, v{})", dst.index(), a.index(), b.index())
            }
            Instr::EwMin { dst, a, b } => {
                format!("v{} = min(v{}, v{})", dst.index(), a.index(), b.index())
            }
            Instr::Dot { dst, a, b } => {
                format!("s{} = dot(v{}, v{})", dst.index(), a.index(), b.index())
            }
            Instr::Duplicate { vec, matrix } => {
                format!("duplicate v{} -> cvb[m{}]", vec.index(), matrix.index())
            }
            Instr::Spmv { matrix, input, output } => {
                format!("v{} = spmv(m{}, v{})", output.index(), matrix.index(), input.index())
            }
        };
        let _ = writeln!(out, "{pc:>4}: {:016x} {:016x}  {text}", words[0], words[1]);
    }
    out
}

#[cfg(test)]
mod disasm_tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn listing_covers_every_instruction() {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::SetScalar { dst: SReg(0), value: 2.5 });
        pb.loop_start();
        pb.push(Instr::Duplicate { vec: VecId(1), matrix: MatrixId(0) });
        pb.push(Instr::Spmv { matrix: MatrixId(0), input: VecId(1), output: VecId(2) });
        pb.push(Instr::Dot { dst: SReg(1), a: VecId(2), b: VecId(2) });
        pb.loop_end_if_less(SReg(1), SReg(0));
        let p = pb.build().unwrap();
        let text = disassemble(&p);
        assert_eq!(text.lines().count(), p.len());
        assert!(text.contains("s0 = 2.5"));
        assert!(text.contains("loop_start"));
        assert!(text.contains("v2 = spmv(m0, v1)"));
        assert!(text.contains("loop_end_if s1 < s0"));
    }
}
