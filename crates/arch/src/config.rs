//! Architecture configuration and the cycle-cost model.

use rsqp_encode::{Alphabet, StructureSet};

/// How the compressed vector buffers are organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CvbPolicy {
    /// First-Fit compressed layout (the customized design, §4.3).
    #[default]
    FirstFit,
    /// `C` full copies of the vector (the paper's baseline design:
    /// "C copies of the vector were stored in CVB", §5.2).
    FullDuplication,
}

/// Which pack scheduler maps row strings onto the structure set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// The paper's greedy string-replacement scheduler (§4.2).
    #[default]
    Greedy,
    /// The exact dynamic-programming scheduler (our ablation; never more
    /// cycles than greedy).
    DpOptimal,
}

/// Per-instruction-class fixed latencies, in cycles.
///
/// These model pipeline fill, instruction fetch/decode, and result
/// write-back of the corresponding hardware units. The streaming *throughput*
/// terms (`⌈L/C⌉`, scheduled pack count, compressed address count) are added
/// on top by the machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed overhead of a vector-engine instruction.
    pub vector_latency: u64,
    /// Fixed overhead of an SpMV instruction (MAC-tree depth + alignment
    /// drain).
    pub spmv_latency: u64,
    /// Fixed overhead of a vector-duplication instruction.
    pub dup_latency: u64,
    /// Latency of a scalar ALU instruction.
    pub scalar_latency: u64,
    /// Latency of the loop-control instruction.
    pub control_latency: u64,
    /// Fixed overhead of an HBM transfer instruction.
    pub transfer_latency: u64,
    /// Extra cycles per dot product for the reduction drain.
    pub dot_drain: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            vector_latency: 12,
            spmv_latency: 40,
            dup_latency: 12,
            scalar_latency: 8,
            control_latency: 4,
            transfer_latency: 24,
            dot_drain: 16,
        }
    }
}

/// Deterministic, seed-driven fault injection for the cycle-level machine.
///
/// Models single-event upsets as single-bit flips in the IEEE-754
/// representation of a datum. Two strike sites are modeled, matching where
/// the real accelerator's data actually moves:
///
/// * **HBM reads** — each [`crate::Instr::LoadHbm`] flips one uniformly
///   chosen bit of one uniformly chosen element of the transferred vector
///   with probability `hbm_read_flip_prob`;
/// * **MAC outputs** — each [`crate::Instr::Spmv`] flips one bit of one
///   element of the freshly computed output vector with probability
///   `mac_output_flip_prob`.
///
/// All randomness comes from a SplitMix64 stream seeded by `seed`, so a
/// given (program, config, seed) triple reproduces the exact same fault
/// pattern on every run — a requirement for regression-testing the solve
/// pipeline's recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Per-`LoadHbm` probability of corrupting the transferred vector.
    pub hbm_read_flip_prob: f64,
    /// Per-`Spmv` probability of corrupting the output vector.
    pub mac_output_flip_prob: f64,
}

impl FaultConfig {
    /// A fault stream with the given seed and zero strike probability; use
    /// the `with_*` builders to arm the strike sites.
    pub fn new(seed: u64) -> Self {
        FaultConfig { seed, hbm_read_flip_prob: 0.0, mac_output_flip_prob: 0.0 }
    }

    /// Sets the per-`LoadHbm` flip probability.
    pub fn with_hbm_read_flips(mut self, prob: f64) -> Self {
        self.hbm_read_flip_prob = prob;
        self
    }

    /// Sets the per-`Spmv` flip probability.
    pub fn with_mac_output_flips(mut self, prob: f64) -> Self {
        self.mac_output_flip_prob = prob;
        self
    }

    /// Derives an independent fault stream for sub-stream `stream`, keeping
    /// the strike probabilities. Used to give each job of a concurrent
    /// chaos run its own decorrelated (but still reproducible) fault
    /// pattern from one master seed: `derive` is injective in `stream` and
    /// mixes it through SplitMix64's finalizer, so neighbouring stream
    /// indices do not produce correlated bit-flip sequences.
    pub fn derive(&self, stream: u64) -> Self {
        // SplitMix64 finalizer over (seed ⊕ golden-ratio·stream).
        let mut z = self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultConfig { seed: z, ..*self }
    }
}

/// A concrete architecture instance: datapath width `C`, the customized MAC
/// structure set `S`, and the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    c: usize,
    set: StructureSet,
    cost: CostModel,
    cvb: CvbPolicy,
    scheduler: SchedulePolicy,
    single_precision: bool,
    fault: Option<FaultConfig>,
}

impl ArchConfig {
    /// Creates a configuration from a structure set (First-Fit CVB).
    pub fn new(set: StructureSet) -> Self {
        ArchConfig {
            c: set.alphabet().c(),
            set,
            cost: CostModel::default(),
            cvb: CvbPolicy::FirstFit,
            scheduler: SchedulePolicy::Greedy,
            single_precision: false,
            fault: None,
        }
    }

    /// The paper's baseline architecture at width `c`: single-output MAC
    /// tree and `C` full vector copies in the CVB.
    ///
    /// # Panics
    ///
    /// Panics unless `c` is a power of two in `[2, 1024]`.
    pub fn baseline(c: usize) -> Self {
        ArchConfig::new(StructureSet::baseline(Alphabet::new(c)))
            .with_cvb_policy(CvbPolicy::FullDuplication)
    }

    /// Overrides the CVB organization.
    pub fn with_cvb_policy(mut self, cvb: CvbPolicy) -> Self {
        self.cvb = cvb;
        self
    }

    /// Overrides the pack scheduler (greedy is the paper's method).
    pub fn with_scheduler(mut self, scheduler: SchedulePolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The pack-scheduler policy.
    pub fn scheduler(&self) -> SchedulePolicy {
        self.scheduler
    }

    /// Emulates the FPGA's single-precision arithmetic: every functional
    /// result is rounded to `f32` before being stored (the paper's hardware
    /// computes in single precision; see `DESIGN.md` for the default-f64
    /// fidelity note).
    pub fn with_single_precision(mut self, on: bool) -> Self {
        self.single_precision = on;
        self
    }

    /// Whether single-precision emulation is enabled.
    pub fn single_precision(&self) -> bool {
        self.single_precision
    }

    /// The CVB organization.
    pub fn cvb_policy(&self) -> CvbPolicy {
        self.cvb
    }

    /// Overrides the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Arms the deterministic fault-injection harness. Pass `None` (the
    /// default) for a fault-free machine.
    pub fn with_fault_injection(mut self, fault: Option<FaultConfig>) -> Self {
        self.fault = fault;
        self
    }

    /// The fault-injection configuration, if armed.
    pub fn fault(&self) -> Option<FaultConfig> {
        self.fault
    }

    /// Datapath width `C`.
    pub fn c(&self) -> usize {
        self.c
    }

    /// The MAC structure set.
    pub fn set(&self) -> &StructureSet {
        &self.set
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Cycles for a streaming vector instruction over length `l`:
    /// `⌈l/C⌉` plus the fixed latency.
    pub fn vector_cycles(&self, l: usize) -> u64 {
        self.cost.vector_latency + l.div_ceil(self.c) as u64
    }

    /// Cycles for an HBM transfer of length `l`.
    pub fn transfer_cycles(&self, l: usize) -> u64 {
        self.cost.transfer_latency + l.div_ceil(self.c) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_single_structure() {
        let cfg = ArchConfig::baseline(16);
        assert_eq!(cfg.c(), 16);
        assert_eq!(cfg.set().len(), 1);
    }

    #[test]
    fn vector_cycles_scale_inversely_with_c() {
        let c16 = ArchConfig::baseline(16);
        let c64 = ArchConfig::baseline(64);
        let lat = CostModel::default().vector_latency;
        assert_eq!(c16.vector_cycles(1600), lat + 100);
        assert_eq!(c64.vector_cycles(1600), lat + 25);
        assert_eq!(c16.vector_cycles(0), lat);
        assert_eq!(c16.vector_cycles(1), lat + 1);
    }

    #[test]
    fn derived_fault_streams_are_deterministic_and_distinct() {
        let base = FaultConfig::new(7).with_hbm_read_flips(0.5).with_mac_output_flips(0.25);
        let a = base.derive(0);
        let b = base.derive(1);
        assert_eq!(a, base.derive(0), "derivation is deterministic");
        assert_ne!(a.seed, b.seed, "streams decorrelate");
        assert_ne!(a.seed, base.seed, "stream 0 is mixed too");
        assert_eq!(a.hbm_read_flip_prob, 0.5);
        assert_eq!(b.mac_output_flip_prob, 0.25);
    }

    #[test]
    fn cost_model_override() {
        let cfg = ArchConfig::baseline(4)
            .with_cost_model(CostModel { vector_latency: 0, ..Default::default() });
        assert_eq!(cfg.vector_cycles(8), 2);
    }
}
