//! Instruction sequences with a single hardware loop.

use crate::{ArchError, Instr, SReg};

/// A validated instruction sequence.
///
/// Programs may contain at most one loop (`LoopStart … LoopEndIfLess`),
/// matching the RSQP sequencer, which re-runs the PCG body until the
/// residual test fires.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    instrs: Vec<Instr>,
    loop_bounds: Option<(usize, usize)>,
    max_trips: usize,
}

impl Program {
    /// The instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Loop body bounds `(start, end)` as instruction indices, if any.
    pub fn loop_bounds(&self) -> Option<(usize, usize)> {
        self.loop_bounds
    }

    /// Maximum loop trips before [`ArchError::LoopCapReached`].
    pub fn max_trips(&self) -> usize {
        self.max_trips
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Builder for [`Program`] with loop validation.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    loop_start: Option<usize>,
    loop_bounds: Option<(usize, usize)>,
    max_trips: usize,
}

impl ProgramBuilder {
    /// Creates an empty builder (default loop cap 10 000 trips).
    pub fn new() -> Self {
        ProgramBuilder { max_trips: 10_000, ..Default::default() }
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Opens the hardware loop.
    pub fn loop_start(&mut self) -> &mut Self {
        self.instrs.push(Instr::LoopStart);
        self.loop_start = Some(self.instrs.len() - 1);
        self
    }

    /// Closes the loop with the exit test `sregs[a] < sregs[b]`.
    pub fn loop_end_if_less(&mut self, a: SReg, b: SReg) -> &mut Self {
        self.instrs.push(Instr::LoopEndIfLess { a, b });
        if let Some(s) = self.loop_start.take() {
            self.loop_bounds = Some((s, self.instrs.len() - 1));
        }
        self
    }

    /// Sets the loop trip cap.
    pub fn max_trips(&mut self, trips: usize) -> &mut Self {
        self.max_trips = trips;
        self
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::MalformedLoop`] for unbalanced or multiple
    /// loops.
    pub fn build(&mut self) -> Result<Program, ArchError> {
        let starts = self.instrs.iter().filter(|i| matches!(i, Instr::LoopStart)).count();
        let ends = self.instrs.iter().filter(|i| matches!(i, Instr::LoopEndIfLess { .. })).count();
        if starts != ends {
            return Err(ArchError::MalformedLoop(format!("{starts} LoopStart vs {ends} LoopEnd")));
        }
        if starts > 1 {
            return Err(ArchError::MalformedLoop("at most one hardware loop is supported".into()));
        }
        if starts == 1 && self.loop_bounds.is_none() {
            return Err(ArchError::MalformedLoop("LoopEnd precedes LoopStart".into()));
        }
        Ok(Program {
            instrs: self.instrs.clone(),
            loop_bounds: self.loop_bounds,
            max_trips: self.max_trips,
        })
    }
}

/// Convenience: a short human-readable instruction-class histogram used by
/// reports and the Table 1 regenerator.
pub(crate) fn class_of(i: &Instr) -> &'static str {
    match i {
        Instr::LoopStart | Instr::LoopEndIfLess { .. } => "control",
        Instr::Scalar { .. } | Instr::SetScalar { .. } => "scalar",
        Instr::LoadHbm { .. } | Instr::StoreHbm { .. } => "transfer",
        Instr::Lincomb { .. }
        | Instr::EwMul { .. }
        | Instr::EwMax { .. }
        | Instr::EwMin { .. }
        | Instr::Dot { .. } => "vector",
        Instr::Duplicate { .. } => "duplication",
        Instr::Spmv { .. } => "spmv",
    }
}

/// Public wrapper over the class name of an instruction.
pub fn instruction_class(i: &Instr) -> &'static str {
    class_of(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_program() {
        let mut b = ProgramBuilder::new();
        b.push(Instr::SetScalar { dst: SReg(0), value: 1.0 });
        let p = b.build().unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.loop_bounds().is_none());
    }

    #[test]
    fn builds_looped_program() {
        let mut b = ProgramBuilder::new();
        b.push(Instr::SetScalar { dst: SReg(0), value: 0.0 });
        b.loop_start();
        b.push(Instr::Scalar { op: crate::ScalarOp::Add, dst: SReg(0), a: SReg(0), b: SReg(1) });
        b.loop_end_if_less(SReg(2), SReg(0));
        b.max_trips(5);
        let p = b.build().unwrap();
        assert_eq!(p.loop_bounds(), Some((1, 3)));
        assert_eq!(p.max_trips(), 5);
    }

    #[test]
    fn rejects_unbalanced_loops() {
        let mut b = ProgramBuilder::new();
        b.loop_start();
        assert!(matches!(b.build(), Err(ArchError::MalformedLoop(_))));
    }

    #[test]
    fn rejects_double_loops() {
        let mut b = ProgramBuilder::new();
        b.loop_start();
        b.loop_end_if_less(SReg(0), SReg(1));
        b.loop_start();
        b.loop_end_if_less(SReg(0), SReg(1));
        assert!(b.build().is_err());
    }

    #[test]
    fn classifies_instructions() {
        assert_eq!(instruction_class(&Instr::LoopStart), "control");
        assert_eq!(
            instruction_class(&Instr::Duplicate {
                vec: crate::VecId(0),
                matrix: crate::MatrixId(0)
            }),
            "duplication"
        );
    }
}
