//! Cycle-level simulator of the RSQP processing architecture (§3 of the
//! paper).
//!
//! The real RSQP runs on an AMD-Xilinx U50: an HBM-fed SpMV engine with a
//! problem-customized MAC reduction tree, a vector engine, plain vector
//! buffers (VB), compressed vector buffers (CVB), and a small instruction
//! sequencer (Table 1). This crate reproduces that machine in simulation:
//!
//! * [`Instr`] — the instruction set of Table 1 (control, scalar
//!   arithmetic, data transfer, vector ops, vector duplication, SpMV),
//! * [`Program`]/[`ProgramBuilder`] — instruction sequences with a single
//!   hardware loop, as used for Algorithms 1 and 2,
//! * [`Machine`] — functional + cycle-accurate execution: every instruction
//!   computes its real `f64` result *and* advances the cycle counter by the
//!   cost implied by the architecture configuration (pack schedule for
//!   SpMV, CVB layout for duplication, `⌈L/C⌉` for vector ops),
//! * [`kernels`] — canned programs: the PCG solve of Algorithm 2 and the
//!   ADMM vector updates of Algorithm 1,
//! * [`ResourceModel`] — DSP/FF/LUT and f_max estimates calibrated against
//!   the paper's Table 3 synthesis results,
//! * [`codegen`] — the HLS code-generation analog of Figures 4–5.
//!
//! Cycle fidelity follows the paper's published model: instructions execute
//! back-to-back ("each instruction can only start after the previous
//! instruction has completed"), vector instructions take `⌈L/C⌉` cycles plus
//! a pipeline-fill latency, the SpMV instruction takes exactly the scheduled
//! pack count, and vector duplication takes one cycle per compressed CVB
//! address.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
mod config;
mod error;
pub mod hbm;
mod isa;
pub mod kernels;
mod machine;
mod program;
mod resources;
pub mod rom;

pub use config::{ArchConfig, CostModel, CvbPolicy, FaultConfig, SchedulePolicy};
pub use error::ArchError;
pub use isa::{Instr, MatrixId, SReg, ScalarOp, VecId};
pub use machine::{CycleBreakdown, Machine, RunStats};
pub use program::{instruction_class, Program, ProgramBuilder};
pub use resources::{ResourceEstimate, ResourceModel};
