//! Compressed Vector Buffers (§3.4 and §4.3 of the RSQP paper).
//!
//! The SpMV engine reads `C` random vector locations per cycle, one per
//! multiplier lane, but each on-chip buffer has a single read port. Storing
//! `C` full copies of the vector (the baseline) makes the vector-duplication
//! instruction cost `L` cycles per update (`E_c = C`). After the pack
//! schedule is fixed, each lane only ever reads a *subset* of the vector, so
//! the copies can be compressed: assign every vector element an address such
//! that no two elements sharing an address are read by the same lane —
//! exactly the MILP of Eq. (5). The MILP is intractable (the paper tried
//! CVXPY and gave up at `C = 16`, `L = 500`), so, like the paper, we solve
//! it with the First-Fit heuristic; a brute-force exact solver is included
//! for tiny instances to bound First-Fit's gap in tests.
//!
//! # Example
//!
//! ```
//! use rsqp_sparse::CsrMatrix;
//! use rsqp_encode::{SparsityString, StructureSet, greedy_schedule, Alphabet};
//! use rsqp_cvb::{AccessMatrix, first_fit};
//!
//! let m = CsrMatrix::from_triplets(4, 4, vec![
//!     (0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0),
//! ]);
//! let s = SparsityString::encode(&m, 4);
//! let set = StructureSet::parse("4a1c", Alphabet::new(4));
//! let schedule = greedy_schedule(&s, &set);
//! let v = AccessMatrix::from_schedule(&schedule, &s, &m, &set);
//! let layout = first_fit(&v);
//! // Four elements, each read by exactly one lane: one address suffices.
//! assert_eq!(layout.num_addresses(), 1);
//! assert!(layout.verify(&v));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod exact;
mod firstfit;

pub use access::AccessMatrix;
pub use exact::exact_min_addresses;
pub use firstfit::{first_fit, CvbLayout};
