//! Exact (brute-force) reference solver for tiny instances of Eq. (5).
//!
//! Used only in tests and ablation benches to measure the optimality gap of
//! First-Fit; the MILP itself is NP-hard (it is interval-free graph
//! coloring of the lane-conflict graph).

use crate::AccessMatrix;

/// Exhaustive branch-and-bound minimum number of addresses.
///
/// # Panics
///
/// Panics if more than 16 elements are accessed (exponential search).
pub fn exact_min_addresses(v: &AccessMatrix) -> usize {
    let elems: Vec<u128> = (0..v.len()).map(|j| v.mask(j)).filter(|&m| m != 0).collect();
    assert!(elems.len() <= 16, "exact solver is for tiny instances only");
    if elems.is_empty() {
        return 0;
    }
    let mut best = elems.len(); // full separation always works
    let mut addr_masks: Vec<u128> = Vec::new();
    fn rec(elems: &[u128], idx: usize, addr_masks: &mut Vec<u128>, best: &mut usize) {
        if addr_masks.len() >= *best {
            return; // bound
        }
        if idx == elems.len() {
            *best = addr_masks.len();
            return;
        }
        let m = elems[idx];
        for a in 0..addr_masks.len() {
            if addr_masks[a] & m == 0 {
                addr_masks[a] |= m;
                rec(elems, idx + 1, addr_masks, best);
                addr_masks[a] &= !m;
            }
        }
        addr_masks.push(m);
        rec(elems, idx + 1, addr_masks, best);
        addr_masks.pop();
    }
    rec(&elems, 0, &mut addr_masks, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_fit;

    #[test]
    fn exact_matches_hand_solutions() {
        // Pairwise-disjoint -> 1 address.
        let v = AccessMatrix::from_masks(4, vec![0b0001, 0b0010, 0b0100]);
        assert_eq!(exact_min_addresses(&v), 1);
        // All conflicting -> n addresses.
        let v = AccessMatrix::from_masks(4, vec![0b0001, 0b0001, 0b0001]);
        assert_eq!(exact_min_addresses(&v), 3);
        // Mixed: {11}, {01}, {10} -> {11} alone, {01,10} together = 2.
        let v = AccessMatrix::from_masks(2, vec![0b11, 0b01, 0b10]);
        assert_eq!(exact_min_addresses(&v), 2);
    }

    #[test]
    fn first_fit_matches_exact_on_small_random_instances() {
        // Deterministic pseudo-random masks; measure the FF gap.
        let mut gap_total = 0usize;
        for seed in 0..20u64 {
            let masks: Vec<u128> = (0..10)
                .map(|i| {
                    let x = (seed * 2654435761 + i * 40503) % 15 + 1;
                    x as u128
                })
                .collect();
            let v = AccessMatrix::from_masks(4, masks);
            let ff = first_fit(&v).num_addresses();
            let opt = exact_min_addresses(&v);
            assert!(ff >= opt);
            gap_total += ff - opt;
        }
        // First-fit-decreasing is near-optimal on these tiny instances.
        assert!(gap_total <= 4, "total FF gap {gap_total}");
    }

    #[test]
    fn empty_instance() {
        let v = AccessMatrix::from_masks(4, vec![0, 0]);
        assert_eq!(exact_min_addresses(&v), 0);
    }

    #[test]
    #[should_panic(expected = "tiny instances")]
    fn large_instance_panics() {
        let v = AccessMatrix::from_masks(2, vec![1; 40]);
        exact_min_addresses(&v);
    }
}
