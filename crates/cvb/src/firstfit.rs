//! First-Fit solution of the CVB compression problem (Eq. 5).

use crate::AccessMatrix;

/// A compressed CVB memory layout: each accessed vector element is assigned
/// an address such that elements sharing an address are read by disjoint
/// lane sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CvbLayout {
    c: usize,
    l: usize,
    addr_of: Vec<Option<u32>>,
    num_addresses: usize,
}

impl CvbLayout {
    /// The uncompressed baseline: every element stored at its own address in
    /// every bank (`C` full copies, `E_c = C`).
    pub fn full_duplication(v: &AccessMatrix) -> Self {
        CvbLayout {
            c: v.c(),
            l: v.len(),
            addr_of: (0..v.len()).map(|j| Some(j as u32)).collect(),
            num_addresses: v.len(),
        }
    }

    /// Number of compressed addresses (= vector-update cycles per
    /// duplication instruction).
    pub fn num_addresses(&self) -> usize {
        self.num_addresses
    }

    /// Address of element `j` (`None` when no lane ever reads it, so it is
    /// not stored in the CVB at all — the gray entries of Figure 3).
    pub fn addr_of(&self, j: usize) -> Option<u32> {
        self.addr_of[j]
    }

    /// The extra-copy factor `E_c = num_addresses·C/L` of the match-score
    /// formula (§3.6): full duplication gives `C`, the ideal single copy
    /// gives 1.
    pub fn ec(&self) -> f64 {
        if self.l == 0 {
            1.0
        } else {
            self.num_addresses as f64 * self.c as f64 / self.l as f64
        }
    }

    /// Cycles the vector-duplication instruction needs per update.
    pub fn update_cycles(&self) -> usize {
        self.num_addresses
    }

    /// Memory words per bank (= number of addresses).
    pub fn words_per_bank(&self) -> usize {
        self.num_addresses
    }

    /// Checks the layout against the access matrix: every accessed element
    /// has an address, and no two elements sharing an address are read by a
    /// common lane.
    pub fn verify(&self, v: &AccessMatrix) -> bool {
        if v.len() != self.l || v.c() != self.c {
            return false;
        }
        let mut used: Vec<u128> = vec![0; self.num_addresses];
        for j in 0..self.l {
            match (self.addr_of[j], v.mask(j)) {
                (None, 0) => {}
                (None, _) => return false,
                (Some(a), m) => {
                    let a = a as usize;
                    if a >= self.num_addresses {
                        return false;
                    }
                    if used[a] & m != 0 {
                        return false;
                    }
                    used[a] |= m;
                }
            }
        }
        true
    }

    /// The bank contents: `banks[k][addr] = Some(j)` when bank `k` serves
    /// element `j` at `addr` — the data behind the paper's index-translation
    /// module.
    pub fn bank_contents(&self, v: &AccessMatrix) -> Vec<Vec<Option<usize>>> {
        let mut banks = vec![vec![None; self.num_addresses]; self.c];
        for j in 0..self.l {
            if let Some(a) = self.addr_of[j] {
                let mut bits = v.mask(j);
                while bits != 0 {
                    let k = bits.trailing_zeros() as usize;
                    banks[k][a as usize] = Some(j);
                    bits &= bits - 1;
                }
            }
        }
        banks
    }
}

/// First-Fit assignment: elements are processed in decreasing lane-count
/// order (heaviest first, the classic first-fit-decreasing refinement) and
/// placed at the lowest address whose accumulated lane mask is disjoint.
pub fn first_fit(v: &AccessMatrix) -> CvbLayout {
    let l = v.len();
    let mut order: Vec<usize> = (0..l).filter(|&j| v.mask(j) != 0).collect();
    order.sort_by_key(|&j| std::cmp::Reverse((v.mask(j).count_ones(), std::cmp::Reverse(j))));
    let mut addr_masks: Vec<u128> = Vec::new();
    let mut addr_of: Vec<Option<u32>> = vec![None; l];
    for j in order {
        let m = v.mask(j);
        let slot = addr_masks.iter().position(|&am| am & m == 0);
        let a = match slot {
            Some(a) => a,
            None => {
                addr_masks.push(0);
                addr_masks.len() - 1
            }
        };
        addr_masks[a] |= m;
        addr_of[j] = Some(a as u32);
    }
    CvbLayout { c: v.c(), l, addr_of, num_addresses: addr_masks.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_lanes_share_one_address() {
        let v = AccessMatrix::from_masks(4, vec![0b0001, 0b0010, 0b0100, 0b1000]);
        let layout = first_fit(&v);
        assert_eq!(layout.num_addresses(), 1);
        assert!(layout.verify(&v));
        assert_eq!(layout.ec(), 1.0);
    }

    #[test]
    fn conflicting_lanes_need_separate_addresses() {
        let v = AccessMatrix::from_masks(4, vec![0b0001, 0b0001, 0b0001]);
        let layout = first_fit(&v);
        assert_eq!(layout.num_addresses(), 3);
        assert!(layout.verify(&v));
    }

    #[test]
    fn unaccessed_elements_get_no_address() {
        let v = AccessMatrix::from_masks(4, vec![0b0001, 0, 0b0010]);
        let layout = first_fit(&v);
        assert_eq!(layout.addr_of(1), None);
        assert_eq!(layout.num_addresses(), 1);
        assert!(layout.verify(&v));
    }

    #[test]
    fn never_exceeds_full_duplication() {
        let masks: Vec<u128> = (0..40).map(|j| ((j * 37 + 11) % 16) as u128 | 1).collect();
        let v = AccessMatrix::from_masks(4, masks);
        let ff = first_fit(&v);
        let full = CvbLayout::full_duplication(&v);
        assert!(ff.num_addresses() <= full.num_addresses());
        assert!(ff.verify(&v));
        assert!((full.ec() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn respects_lower_bound() {
        let masks: Vec<u128> = vec![0b11, 0b01, 0b10, 0b11, 0b01];
        let v = AccessMatrix::from_masks(2, masks);
        let ff = first_fit(&v);
        assert!(ff.num_addresses() >= v.min_addresses_bound());
        assert!(ff.verify(&v));
    }

    #[test]
    fn bank_contents_match_translation() {
        let v = AccessMatrix::from_masks(2, vec![0b11, 0b01, 0b10]);
        let layout = first_fit(&v);
        let banks = layout.bank_contents(&v);
        assert_eq!(banks.len(), 2);
        // Every accessed (element, lane) pair must be served.
        for j in 0..3 {
            let mut bits = v.mask(j);
            while bits != 0 {
                let k = bits.trailing_zeros() as usize;
                let a = layout.addr_of(j).unwrap() as usize;
                assert_eq!(banks[k][a], Some(j));
                bits &= bits - 1;
            }
        }
    }

    #[test]
    fn verify_rejects_corrupt_layouts() {
        let v = AccessMatrix::from_masks(2, vec![0b01, 0b01]);
        let mut layout = first_fit(&v);
        assert!(layout.verify(&v));
        // Force both elements to address 0: lane conflict.
        layout.addr_of = vec![Some(0), Some(0)];
        layout.num_addresses = 1;
        assert!(!layout.verify(&v));
    }

    #[test]
    fn empty_vector_is_trivial() {
        let v = AccessMatrix::from_masks(4, vec![]);
        let layout = first_fit(&v);
        assert_eq!(layout.num_addresses(), 0);
        assert_eq!(layout.ec(), 1.0);
        assert!(layout.verify(&v));
    }
}
