//! The lane-access matrix `V` of Eq. (5).

use rsqp_encode::{Schedule, SparsityString, StructureSet};
use rsqp_sparse::CsrMatrix;

/// `V ∈ {0,1}^{L×C}`: `V[j][k] = 1` iff vector element `j` is read by
/// multiplier lane `k` at some cycle of the schedule. Lanes are stored as a
/// bitmask per element (`C ≤ 128`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessMatrix {
    l: usize,
    c: usize,
    masks: Vec<u128>,
}

impl AccessMatrix {
    /// Derives `V` from a pack schedule.
    ///
    /// For every firing, slot `k` of the structure occupies the lane range
    /// `[slot_offset_k, slot_offset_k + width_k)`; the row chunk assigned to
    /// the slot feeds its non-zeros to consecutive lanes from the slot
    /// start, so element `cols[offset + t]` is read by lane
    /// `slot_offset + t`.
    ///
    /// # Panics
    ///
    /// Panics if `C > 128` or the schedule does not belong to
    /// `(string, matrix, set)`.
    pub fn from_schedule(
        schedule: &Schedule,
        string: &SparsityString,
        matrix: &CsrMatrix,
        set: &StructureSet,
    ) -> Self {
        let c = schedule.c();
        assert!(c <= 128, "access masks support C <= 128, got {c}");
        assert_eq!(c, string.alphabet().c(), "schedule/string width mismatch");
        let l = matrix.ncols();
        let mut masks = vec![0u128; l];
        for pack in schedule.packs() {
            let st = &set.structures()[pack.structure];
            let offsets = st.slot_offsets();
            for (slot, &lane0) in offsets.iter().enumerate() {
                let pos = pack.pos + slot;
                let src = string.sources()[pos];
                let (cols, _) = matrix.row(src.row);
                for t in 0..src.count {
                    let lane = lane0 + t;
                    debug_assert!(lane < c, "lane overflow");
                    masks[cols[src.offset + t]] |= 1u128 << lane;
                }
            }
        }
        AccessMatrix { l, c, masks }
    }

    /// Builds directly from masks (tests and the exact solver).
    ///
    /// # Panics
    ///
    /// Panics if a mask uses lanes ≥ `c`.
    pub fn from_masks(c: usize, masks: Vec<u128>) -> Self {
        assert!(c <= 128, "access masks support C <= 128");
        let limit = if c == 128 { u128::MAX } else { (1u128 << c) - 1 };
        assert!(masks.iter().all(|&m| m & !limit == 0), "mask uses lanes beyond C");
        AccessMatrix { l: masks.len(), c, masks }
    }

    /// Vector length `L`.
    pub fn len(&self) -> usize {
        self.l
    }

    /// True when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.l == 0
    }

    /// Datapath width `C`.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Lane bitmask of element `j`.
    pub fn mask(&self, j: usize) -> u128 {
        self.masks[j]
    }

    /// Number of elements read by at least one lane.
    pub fn num_accessed(&self) -> usize {
        self.masks.iter().filter(|&&m| m != 0).count()
    }

    /// For each lane, how many distinct elements it reads; the maximum is a
    /// lower bound on the number of compressed addresses.
    pub fn lane_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.c];
        for &m in &self.masks {
            let mut bits = m;
            while bits != 0 {
                let k = bits.trailing_zeros() as usize;
                loads[k] += 1;
                bits &= bits - 1;
            }
        }
        loads
    }

    /// `max_k lane_loads[k]` — the compression lower bound.
    pub fn min_addresses_bound(&self) -> usize {
        self.lane_loads().into_iter().max().unwrap_or(0)
    }

    /// Total stored copies across banks (`Σ_j popcount(mask_j)`), the
    /// memory footprint before compression of never-read elements.
    pub fn total_copies(&self) -> usize {
        self.masks.iter().map(|m| m.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsqp_encode::{greedy_schedule, Alphabet, SparsityString, StructureSet};

    #[test]
    fn identity_matrix_single_lane_each() {
        let m = CsrMatrix::identity(4);
        let s = SparsityString::encode(&m, 4);
        let set = StructureSet::parse("4a1c", Alphabet::new(4));
        let sched = greedy_schedule(&s, &set);
        assert_eq!(sched.cycles(), 1);
        let v = AccessMatrix::from_schedule(&sched, &s, &m, &set);
        assert_eq!(v.mask(0), 0b0001);
        assert_eq!(v.mask(1), 0b0010);
        assert_eq!(v.mask(2), 0b0100);
        assert_eq!(v.mask(3), 0b1000);
        assert_eq!(v.min_addresses_bound(), 1);
        assert_eq!(v.total_copies(), 4);
    }

    #[test]
    fn shared_column_accumulates_lanes() {
        // Two rows both reading column 0, scheduled in the 'aa...' pattern:
        // row 0 lane 0, row 1 lane 1 in the same firing.
        let m = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 0, 1.0)]);
        let s = SparsityString::encode(&m, 4);
        let set = StructureSet::parse("2a1c", Alphabet::new(4));
        let sched = greedy_schedule(&s, &set);
        assert_eq!(sched.cycles(), 1);
        let v = AccessMatrix::from_schedule(&sched, &s, &m, &set);
        assert_eq!(v.mask(0).count_ones(), 2);
        assert_eq!(v.mask(1), 0);
        assert_eq!(v.num_accessed(), 1);
    }

    #[test]
    fn baseline_schedule_uses_leading_lanes() {
        // With the fallback-only set every row starts at lane 0.
        let m = CsrMatrix::from_triplets(
            3,
            5,
            vec![(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 4, 1.0)],
        );
        let s = SparsityString::encode(&m, 4);
        let set = StructureSet::baseline(Alphabet::new(4));
        let sched = greedy_schedule(&s, &set);
        let v = AccessMatrix::from_schedule(&sched, &s, &m, &set);
        assert_eq!(v.mask(1), 0b01); // row 0 first nnz -> lane 0
        assert_eq!(v.mask(2), 0b10); // row 0 second nnz -> lane 1
        assert_eq!(v.mask(3), 0b01); // row 1 -> lane 0
        assert_eq!(v.mask(4), 0b01);
        assert_eq!(v.min_addresses_bound(), 3);
    }

    #[test]
    fn long_rows_span_chunks() {
        // 6-nnz row at C=4: chunk of 4 on lanes 0..3, remainder 2 on 0..1.
        let m = CsrMatrix::from_triplets(1, 6, (0..6).map(|j| (0, j, 1.0)).collect::<Vec<_>>());
        let s = SparsityString::encode(&m, 4);
        let set = StructureSet::baseline(Alphabet::new(4));
        let sched = greedy_schedule(&s, &set);
        let v = AccessMatrix::from_schedule(&sched, &s, &m, &set);
        assert_eq!(v.mask(0), 0b0001);
        assert_eq!(v.mask(3), 0b1000);
        assert_eq!(v.mask(4), 0b0001);
        assert_eq!(v.mask(5), 0b0010);
    }

    #[test]
    fn from_masks_validates_lanes() {
        let v = AccessMatrix::from_masks(4, vec![0b1010, 0b0001]);
        assert_eq!(v.lane_loads(), vec![1, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "beyond C")]
    fn from_masks_rejects_overflow() {
        AccessMatrix::from_masks(2, vec![0b100]);
    }
}
