//! Property-based tests for CVB compression.

use proptest::prelude::*;
use rsqp_cvb::{first_fit, AccessMatrix, CvbLayout};

fn arb_masks() -> impl Strategy<Value = (usize, Vec<u128>)> {
    prop::sample::select(vec![2usize, 4, 8, 16]).prop_flat_map(|c| {
        let limit = (1u128 << c) - 1;
        (Just(c), prop::collection::vec((0u128..=u128::MAX).prop_map(move |m| m & limit), 0..60))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn first_fit_layouts_are_always_valid((c, masks) in arb_masks()) {
        let v = AccessMatrix::from_masks(c, masks);
        let layout = first_fit(&v);
        prop_assert!(layout.verify(&v));
        // Address count bounded below by the busiest lane and above by the
        // number of accessed elements.
        prop_assert!(layout.num_addresses() >= v.min_addresses_bound());
        prop_assert!(layout.num_addresses() <= v.num_accessed());
        // E_c lies in [0, C] (0 for empty, otherwise >= addresses*C/L).
        prop_assert!(layout.ec() <= c as f64 + 1e-12);
    }

    #[test]
    fn full_duplication_is_always_valid_and_never_better((c, masks) in arb_masks()) {
        let v = AccessMatrix::from_masks(c, masks);
        let full = CvbLayout::full_duplication(&v);
        prop_assert!(full.verify(&v));
        let ff = first_fit(&v);
        prop_assert!(ff.num_addresses() <= full.num_addresses());
    }

    #[test]
    fn bank_contents_serve_every_access((c, masks) in arb_masks()) {
        let v = AccessMatrix::from_masks(c, masks.clone());
        let layout = first_fit(&v);
        let banks = layout.bank_contents(&v);
        for (j, &m) in masks.iter().enumerate() {
            let mut bits = m;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                let addr = layout.addr_of(j).expect("accessed element stored") as usize;
                prop_assert_eq!(banks[lane][addr], Some(j));
                bits &= bits - 1;
            }
        }
    }

    #[test]
    fn lane_loads_sum_to_total_copies((c, masks) in arb_masks()) {
        let v = AccessMatrix::from_masks(c, masks);
        let loads = v.lane_loads();
        prop_assert_eq!(loads.iter().sum::<usize>(), v.total_copies());
    }
}
